package noftl

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"
)

// MetricsText renders the database's full metric set in the Prometheus text
// exposition format (version 0.0.4): the labeled counter and histogram
// families maintained live by the I/O scheduler and space-manager hooks,
// plus scrape-time gauges covering every layer (scheduler queue depth,
// per-die free blocks, per-region occupancy and background-GC debt, buffer
// pool, WAL, transactions, device totals).  The same text is served on
// /metrics when a listener is configured with WithMetricsListener.
func (db *DB) MetricsText() string {
	db.scrapeGauges()
	return db.reg.Text()
}

// scrapeGauges refreshes the point-in-time families in the registry from the
// layers' snapshot accessors.  Counters that the hot paths do not maintain as
// labeled children (buffer pool, WAL, transactions, device) are mirrored into
// the registry here — cumulative values copied at scrape time, which is
// exactly as fresh as the snapshot the Stats() facade would hand out.
func (db *DB) scrapeGauges() {
	reg := db.reg

	reg.Gauge("noftl_up", "Always 1 while the database is open.").With().Set(1)
	reg.Gauge("noftl_simulated_time_nanoseconds",
		"Highest simulated (virtual) time observed so far.").With().Set(int64(db.clock.Now()))

	sched := db.space.Scheduler()
	reg.Gauge("noftl_sched_queue_depth",
		"Flash commands currently enqueued for asynchronous submission.").With().Set(int64(sched.QueueDepth()))

	dieFree := reg.Gauge("noftl_die_free_blocks",
		"Free blocks currently available on each die.", "die")
	for die, free := range db.space.DieFreeBlocks() {
		dieFree.With(strconv.Itoa(die)).Set(int64(free))
	}

	space := db.space.Stats()
	validPages := reg.Gauge("noftl_region_valid_pages",
		"Logical pages currently mapped into each region.", "region")
	capPages := reg.Gauge("noftl_region_capacity_pages",
		"Exported logical capacity of each region in pages.", "region")
	freeBlocks := reg.Gauge("noftl_region_free_blocks",
		"Free blocks across each region's dies.", "region")
	debt := reg.Gauge("noftl_bggc_debt_blocks",
		"Free-block shortfall relative to the background-GC high watermark, per region.", "region")
	inBand := reg.Gauge("noftl_bggc_dies_in_band",
		"Dies at or below the background-GC high watermark, per region.", "region")
	atLow := reg.Gauge("noftl_bggc_dies_at_low_water",
		"Dies at or below the foreground-GC low watermark, per region.", "region")
	victims := reg.Gauge("noftl_bggc_victims_open",
		"Dies with a partially collected background victim, per region.", "region")
	for _, r := range space.Regions {
		validPages.With(r.Name).Set(r.ValidPages)
		capPages.With(r.Name).Set(r.CapacityPages)
		freeBlocks.With(r.Name).Set(int64(r.FreeBlocks))
		debt.With(r.Name).Set(r.BGDebtBlocks)
		inBand.With(r.Name).Set(int64(r.DiesInBGBand))
		atLow.With(r.Name).Set(int64(r.DiesAtLowWater))
		victims.With(r.Name).Set(int64(r.BGVictimsOpen))
	}

	bp := db.pool.Stats()
	reg.Counter("noftl_buffer_hits_total", "Buffer-pool hits.").With().Store(bp.Hits)
	reg.Counter("noftl_buffer_misses_total", "Buffer-pool demand misses.").With().Store(bp.Misses)
	reg.Counter("noftl_buffer_evictions_total", "Buffer-pool frame evictions.").With().Store(bp.Evictions)
	reg.Counter("noftl_buffer_writebacks_total", "Dirty pages written back by the buffer pool.").With().Store(bp.Writebacks)
	reg.Gauge("noftl_buffer_resident_pages", "Pages currently resident in the buffer pool.").With().Set(int64(bp.Resident))
	reg.Gauge("noftl_buffer_dirty_pages", "Dirty pages currently resident in the buffer pool.").With().Set(int64(bp.Dirty))

	reg.Counter("noftl_txn_started_total", "Transactions started.").With().Store(db.txns.Started())
	reg.Counter("noftl_txn_committed_total", "Transactions committed.").With().Store(db.txns.Committed())
	reg.Counter("noftl_txn_aborted_total", "Transactions aborted.").With().Store(db.txns.Aborted())

	locks := db.txns.LockManager().Stats()
	reg.Counter("noftl_txn_lock_waits_total",
		"Lock acquisitions that had to block.").With().Store(locks.Waits)
	reg.Counter("noftl_txn_lock_timeouts_total",
		"Lock waits that ended as deadlock victims (ErrLockTimeout).").With().Store(locks.Timeouts)
	reg.Gauge("noftl_txn_locks_held",
		"Keys currently locked (shared or exclusive).").With().Set(locks.Held)
	reg.Gauge("noftl_txn_locks_waiting",
		"Transactions currently blocked on a lock.").With().Set(locks.Waiting)
	shardWaits := reg.Counter("noftl_txn_lock_shard_waits_total",
		"Lock waits per lock-table hash shard.", "shard")
	for i, n := range locks.ShardWaits {
		shardWaits.With(strconv.Itoa(i)).Store(n)
	}

	if db.log != nil {
		reg.Counter("noftl_wal_appends_total", "WAL records appended.").With().Store(db.log.Appended())
		reg.Counter("noftl_wal_flushes_total", "WAL flushes that wrote pages.").With().Store(db.log.Flushes())
		reg.Gauge("noftl_wal_flushed_lsn", "Highest durable WAL log sequence number.").With().Set(int64(db.log.FlushedLSN()))
		reg.Counter("noftl_wal_group_commits_total",
			"WAL forces that made more than one committer durable at once.").With().Store(db.log.GroupCommits())
		reg.Counter("noftl_wal_grouped_txns_total",
			"Committers served by the WAL group-commit path.").With().Store(db.log.GroupedTxns())
		reg.Counter("noftl_wal_bytes_appended_total",
			"Encoded WAL record bytes appended.").With().Store(db.log.BytesAppended())
		reg.Counter("noftl_wal_bytes_trimmed_total",
			"Encoded WAL record bytes dropped by checkpoint truncation.").With().Store(db.log.BytesTrimmed())
		reg.Gauge("noftl_wal_bytes_live",
			"Encoded WAL record bytes held by live log pages (crash-replay upper bound).").With().Set(db.log.BytesLive())
		ck := db.checkpointStats()
		reg.Counter("noftl_wal_checkpoints_total",
			"Checkpoints taken (full logical snapshots appended to the WAL).").With().Store(ck.Count)
		reg.Counter("noftl_wal_checkpoint_chunks_total",
			"Checkpoint snapshot chunk records appended.").With().Store(ck.Chunks)
		reg.Gauge("noftl_wal_checkpoint_last_lsn",
			"LSN of the last checkpoint's final chunk (recovery replays records after it).").With().Set(int64(ck.LastLSN))
		reg.Gauge("noftl_wal_checkpoint_last_bytes",
			"Snapshot size of the last checkpoint in bytes.").With().Set(ck.LastBytes)
	}

	dev := db.dev.Stats()
	reg.Counter("noftl_device_reads_total", "Physical page reads on the flash device.").With().Store(dev.Reads)
	reg.Counter("noftl_device_programs_total", "Physical page programs on the flash device.").With().Store(dev.Programs)
	reg.Counter("noftl_device_erases_total", "Physical block erases on the flash device.").With().Store(dev.Erases)

	if db.tracer != nil {
		reg.Counter("noftl_trace_events_recorded_total", "Trace events recorded.").With().Store(db.tracer.Recorded())
		reg.Counter("noftl_trace_events_dropped_total",
			"Trace events overwritten after the ring buffer wrapped.").With().Store(db.tracer.Dropped())
	}
}

// MetricsAddr returns the bound address of the metrics listener, or "" when
// none was configured.  With WithMetricsListener("127.0.0.1:0") this is how
// callers discover the kernel-assigned port.
func (db *DB) MetricsAddr() string {
	if db.msrv == nil {
		return ""
	}
	return db.msrv.lis.Addr().String()
}

// metricsServer is the opt-in HTTP endpoint: Prometheus text on /metrics, a
// liveness probe on /healthz and the standard pprof handlers under
// /debug/pprof/ (the same mux, so one port serves both planes).
type metricsServer struct {
	lis  net.Listener
	srv  *http.Server
	done sync.WaitGroup
}

func serveMetrics(db *DB, addr string) (*metricsServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("noftl: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(db.MetricsText()))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if err := db.checkOpen(); err != nil {
			http.Error(w, "closed", http.StatusServiceUnavailable)
			return
		}
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ms := &metricsServer{
		lis: lis,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	ms.done.Add(1)
	go func() {
		defer ms.done.Done()
		_ = ms.srv.Serve(lis) // returns http.ErrServerClosed on shutdown
	}()
	return ms, nil
}

// shutdown closes the listener and waits for the serve loop to exit.
func (ms *metricsServer) shutdown() {
	_ = ms.srv.Close()
	ms.done.Wait()
}
