package noftl

import (
	"errors"
	"fmt"

	"noftl/internal/btree"
	"noftl/internal/catalog"
	"noftl/internal/core"
	"noftl/internal/ddl"
	"noftl/internal/flash"
	"noftl/internal/storage"
	"noftl/internal/txn"
)

// The package's error taxonomy.  Every error returned by the public API can
// be classified with errors.Is against these sentinels; the DDL path
// additionally returns *DDLError (errors.As) carrying the failing statement
// and clause.
var (
	// ErrNotFound reports a lookup of an unknown table, index, tablespace,
	// region, key or record.
	ErrNotFound = errors.New("noftl: not found")
	// ErrClosed reports use of a closed database.
	ErrClosed = errors.New("noftl: database closed")
	// ErrUnsupported reports an operation the engine cannot perform (e.g.
	// dropping the SYSTEM tablespace).
	ErrUnsupported = errors.New("noftl: unsupported operation")
	// ErrConflict reports an operation that clashed with existing state or a
	// concurrent transaction: creating an object whose name is taken,
	// dropping an object that is still in use, or losing a lock wait
	// (deadlock-victim timeout).
	ErrConflict = errors.New("noftl: conflict")
	// ErrRegionFull reports a write that exceeded its region's logical
	// capacity (and could not spill).
	ErrRegionFull = errors.New("noftl: region full")
	// ErrCrashed reports that the simulated device hit an injected crash
	// point (see WithFaultPlan): every further operation fails until the
	// database is reopened with Reopen, which runs crash recovery.
	ErrCrashed = flash.ErrCrashed
	// ErrCorruptLog reports that crash recovery found the surviving log
	// unusable (a non-tail log page with no valid version, or a missing log
	// prefix without a covering checkpoint).
	ErrCorruptLog = errors.New("noftl: corrupt log")
)

// DDLError is the structured error returned by Exec: which statement failed,
// where it starts in the executed input, and — when attributable — which
// clause was at fault.  It wraps the underlying cause, so errors.Is against
// the sentinels above (and against internal causes) keeps working.
type DDLError struct {
	// Stmt is the text of the offending statement, trimmed ("" when the
	// input could not be split into statements at all).
	Stmt string
	// Pos is the byte offset in the Exec input at which the offending
	// statement (or, for syntax errors, the offending token) begins.
	Pos int
	// Clause names the clause that failed when attributable, e.g.
	// "HOT_COLD", "GC_POLICY", "REGION", "TABLESPACE" ("" otherwise).
	Clause string
	// Err is the underlying cause.
	Err error
}

func (e *DDLError) Error() string {
	msg := fmt.Sprintf("noftl: DDL failed at position %d", e.Pos)
	if e.Clause != "" {
		msg += fmt.Sprintf(" (clause %s)", e.Clause)
	}
	if e.Stmt != "" {
		stmt := e.Stmt
		if len(stmt) > 60 {
			stmt = stmt[:57] + "..."
		}
		msg += fmt.Sprintf(" in %q", stmt)
	}
	return msg + ": " + e.Err.Error()
}

// Unwrap exposes the cause to errors.Is/As.
func (e *DDLError) Unwrap() error { return e.Err }

// taggedError attaches a public sentinel to an internal error without
// changing its message: errors.Is matches both the sentinel and the original
// cause chain.
type taggedError struct {
	sentinel error
	err      error
}

func (e *taggedError) Error() string   { return e.err.Error() }
func (e *taggedError) Unwrap() []error { return []error{e.sentinel, e.err} }

// tag wraps err with the sentinel unless it already matches it.
func tag(sentinel, err error) error {
	if err == nil || errors.Is(err, sentinel) {
		return err
	}
	return &taggedError{sentinel: sentinel, err: err}
}

// publicErr classifies an internal error under the package's sentinel
// taxonomy.  Unknown errors pass through unchanged.
func publicErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrNotFound), errors.Is(err, ErrClosed),
		errors.Is(err, ErrUnsupported), errors.Is(err, ErrConflict),
		errors.Is(err, ErrRegionFull):
		return err
	case errors.Is(err, catalog.ErrNotFound),
		errors.Is(err, storage.ErrNotFound),
		errors.Is(err, btree.ErrNotFound),
		errors.Is(err, core.ErrUnknownRegion),
		errors.Is(err, core.ErrUnmappedPage):
		return tag(ErrNotFound, err)
	case errors.Is(err, catalog.ErrExists),
		errors.Is(err, catalog.ErrInUse),
		errors.Is(err, core.ErrRegionExists),
		errors.Is(err, core.ErrRegionNotEmpty),
		errors.Is(err, txn.ErrLockTimeout),
		errors.Is(err, txn.ErrTxnDone):
		return tag(ErrConflict, err)
	case errors.Is(err, core.ErrRegionFull):
		return tag(ErrRegionFull, err)
	case errors.Is(err, core.ErrDefaultRegion):
		return tag(ErrUnsupported, err)
	default:
		return err
	}
}

// ddlErr builds the *DDLError for one failing statement.
func ddlErr(stmt string, pos int, clause string, err error) error {
	if err == nil {
		return nil
	}
	var existing *DDLError
	if errors.As(err, &existing) {
		return err
	}
	return &DDLError{Stmt: stmt, Pos: pos, Clause: clause, Err: publicErr(err)}
}

// syntaxDDLErr converts a parser failure into a *DDLError pointing at the
// offending token.
func syntaxDDLErr(input string, err error) error {
	var se *ddl.SyntaxError
	if errors.As(err, &se) {
		start := se.Pos
		if start > len(input) {
			start = len(input)
		}
		end := start + 60
		if end > len(input) {
			end = len(input)
		}
		return &DDLError{Stmt: input[start:end], Pos: se.Pos, Clause: "syntax", Err: err}
	}
	return &DDLError{Pos: 0, Clause: "syntax", Err: err}
}
