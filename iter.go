package noftl

import (
	"iter"
)

// Rows returns an iterator over every live row of the table, in page order:
//
//	for rid, row := range tbl.Rows(tx) {
//	    ...
//	}
//
// Breaking out of the loop stops the scan.  A scan failure ends the
// iteration early and is recorded on the transaction (Tx.Err); db.Update
// refuses to commit while such an error is pending.
func (t *Table) Rows(tx *Tx) iter.Seq2[RID, []byte] {
	return func(yield func(RID, []byte) bool) {
		err := t.Scan(tx, func(rid RID, row []byte) bool {
			return yield(rid, row)
		})
		if err != nil && tx.iterErr == nil {
			tx.iterErr = err
		}
	}
}

// Range returns an iterator over the index entries with lo <= key < hi (nil
// hi means to the end of the index):
//
//	for key, rid := range idx.Range(tx, lo, hi) {
//	    ...
//	}
//
// Breaking out of the loop stops the scan.  A scan failure ends the
// iteration early and is recorded on the transaction (Tx.Err).
func (i *Index) Range(tx *Tx, lo, hi []byte) iter.Seq2[[]byte, RID] {
	return func(yield func([]byte, RID) bool) {
		err := i.Scan(tx, lo, hi, func(key []byte, rid RID) bool {
			return yield(key, rid)
		})
		if err != nil && tx.iterErr == nil {
			tx.iterErr = err
		}
	}
}

// Prefix returns an iterator over every index entry whose key begins with
// prefix (the iterator form of ScanPrefix).
func (i *Index) Prefix(tx *Tx, prefix []byte) iter.Seq2[[]byte, RID] {
	return func(yield func([]byte, RID) bool) {
		err := i.ScanPrefix(tx, prefix, func(key []byte, rid RID) bool {
			return yield(key, rid)
		})
		if err != nil && tx.iterErr == nil {
			tx.iterErr = err
		}
	}
}
