// Command noftl-trace inspects JSONL event traces dumped by a database
// opened with WithTrace (or snapshotted with Admin().TraceDump).
//
// Usage:
//
//	noftl-trace print   [-class flash,gc_step] [-die 3] [-region 1] [-n 50] trace.jsonl
//	noftl-trace filter  [-class host_write] [-die 0] trace.jsonl > subset.jsonl
//	noftl-trace summarize trace.jsonl
//
// print pretty-prints events one per line; filter re-emits the selected
// events as JSONL (composable with another noftl-trace invocation);
// summarize reports per-die utilization, flash latency by priority class and
// the GC interference windows on host writes — the per-trace view of the
// paper's A6 experiment.  With no file argument the trace is read from
// standard input.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"noftl/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	classFlag := fs.String("class", "", "comma-separated event classes to keep (e.g. flash,gc_step,host_write)")
	dieFlag := fs.Int("die", -1, "keep only events on this die")
	regionFlag := fs.Int("region", -1, "keep only events of this region id")
	limitFlag := fs.Int("n", 0, "print at most n events (0 = all)")

	switch cmd {
	case "print", "filter", "summarize":
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "noftl-trace: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	_ = fs.Parse(os.Args[2:])

	events, err := load(fs.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "noftl-trace: %v\n", err)
		os.Exit(1)
	}
	events, err = filter(events, *classFlag, *dieFlag, *regionFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "noftl-trace: %v\n", err)
		os.Exit(2)
	}

	switch cmd {
	case "print":
		n := len(events)
		if *limitFlag > 0 && *limitFlag < n {
			n = *limitFlag
		}
		for _, e := range events[:n] {
			fmt.Println(format(e))
		}
		if n < len(events) {
			fmt.Printf("... (%d more events)\n", len(events)-n)
		}
	case "filter":
		if err := obs.WriteJSONL(os.Stdout, events); err != nil {
			fmt.Fprintf(os.Stderr, "noftl-trace: %v\n", err)
			os.Exit(1)
		}
	case "summarize":
		fmt.Print(obs.Summarize(events).String())
	}
}

// load reads the trace from the file argument, or stdin when none is given.
func load(args []string) ([]obs.Event, error) {
	if len(args) == 0 {
		return obs.LoadJSONL(os.Stdin)
	}
	f, err := os.Open(args[0])
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.LoadJSONL(f)
}

// filter keeps the events matching the class/die/region selection.
func filter(events []obs.Event, classes string, die, region int) ([]obs.Event, error) {
	var classMask uint64
	if classes != "" {
		for _, name := range strings.Split(classes, ",") {
			c, ok := obs.ParseClass(strings.TrimSpace(name))
			if !ok {
				return nil, fmt.Errorf("unknown event class %q", strings.TrimSpace(name))
			}
			classMask |= 1 << c
		}
	}
	if classMask == 0 && die < 0 && region < 0 {
		return events, nil
	}
	out := events[:0]
	for _, e := range events {
		if classMask != 0 && classMask&(1<<e.Class) == 0 {
			continue
		}
		if die >= 0 && int(e.Die) != die {
			continue
		}
		if region >= 0 && int(e.Region) != region {
			continue
		}
		out = append(out, e)
	}
	return out, nil
}

// format renders one event as a human-readable line.
func format(e obs.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8d %-13s", e.Seq, e.Class)
	fmt.Fprintf(&b, " t=%s", formatNs(int64(e.Start)))
	if e.End != e.Start {
		fmt.Fprintf(&b, " +%s", formatNs(int64(e.End-e.Start)))
	}
	if e.Die >= 0 {
		fmt.Fprintf(&b, " die=%d", e.Die)
	}
	if e.Block >= 0 {
		fmt.Fprintf(&b, " blk=%d", e.Block)
	}
	if e.Page >= 0 {
		fmt.Fprintf(&b, " pg=%d", e.Page)
	}
	if e.Region >= 0 {
		fmt.Fprintf(&b, " rgn=%d", e.Region)
	}
	switch e.Class {
	case obs.ClassFlash:
		fmt.Fprintf(&b, " op=%d prio=%d", e.Op, e.Prio)
	case obs.ClassGCStep:
		if e.Op == obs.GCStepForeground {
			b.WriteString(" foreground")
		} else {
			b.WriteString(" background")
		}
	case obs.ClassGCVictim:
		fmt.Fprintf(&b, " valid=%d", e.A)
	case obs.ClassGCErase:
		fmt.Fprintf(&b, " erases=%d", e.A)
	case obs.ClassHostRead, obs.ClassHostWrite, obs.ClassBufMiss, obs.ClassBufEvict:
		fmt.Fprintf(&b, " lpn=%d", e.A)
	case obs.ClassBufWriteBack:
		if e.Op == obs.BufWriteBackGroup {
			fmt.Fprintf(&b, " pages=%d", e.A)
		} else {
			fmt.Fprintf(&b, " lpn=%d", e.A)
		}
	case obs.ClassWALAppend:
		fmt.Fprintf(&b, " lsn=%d bytes=%d", e.A, e.B)
	case obs.ClassWALSync:
		fmt.Fprintf(&b, " records=%d lsn=%d", e.A, e.B)
	case obs.ClassWear:
		fmt.Fprintf(&b, " minE=%d maxE=%d", e.A, e.B)
	}
	return b.String()
}

// formatNs renders a nanosecond count with a human unit.
func formatNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return strconv.FormatFloat(float64(ns)/1e9, 'f', 3, 64) + "s"
	case ns >= 1e6:
		return strconv.FormatFloat(float64(ns)/1e6, 'f', 3, 64) + "ms"
	case ns >= 1e3:
		return strconv.FormatFloat(float64(ns)/1e3, 'f', 1, 64) + "µs"
	default:
		return strconv.FormatInt(ns, 10) + "ns"
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `noftl-trace inspects JSONL event traces dumped by noftl.WithTrace.

usage:
  noftl-trace print     [flags] [trace.jsonl]   pretty-print events
  noftl-trace filter    [flags] [trace.jsonl]   re-emit selected events as JSONL
  noftl-trace summarize [flags] [trace.jsonl]   per-die utilization, latency, GC interference

flags:
  -class flash,gc_step,...   keep only these event classes
  -die N                     keep only events on die N
  -region N                  keep only events of region N
  -n N                       print at most N events (print only)

With no file argument the trace is read from standard input.
`)
}
