// Command flashsim drives the native flash model directly with a synthetic
// update workload, either through the NoFTL space manager or through the
// black-box FTL baseline, and prints the resulting device statistics
// (operation counts, garbage-collection work, write amplification, wear).
//
// Usage:
//
//	flashsim -stack noftl -pages 4000 -updates 20000 -zipf 0.9
//	flashsim -stack ftl   -pages 4000 -updates 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"noftl/internal/core"
	"noftl/internal/flash"
	"noftl/internal/ftl"
	"noftl/internal/sim"
)

func main() {
	stack := flag.String("stack", "noftl", "storage stack to exercise: noftl or ftl")
	pages := flag.Int("pages", 4000, "number of logical pages in the working set")
	updates := flag.Int("updates", 20000, "number of page updates to issue after the initial fill")
	zipf := flag.Float64("zipf", 0.9, "zipfian skew of the update stream (0 = uniform)")
	dies := flag.Int("dies", 8, "number of flash dies")
	util := flag.Float64("util", 0.65, "target device utilization of the working set")
	flag.Parse()

	if *util <= 0.05 || *util > 0.95 {
		fmt.Fprintln(os.Stderr, "-util must be in (0.05, 0.95]")
		os.Exit(2)
	}
	cfg := flash.DefaultConfig()
	channels := 4
	if *dies < channels {
		channels = *dies
	}
	blocksPerDie := int(float64(*pages) / *util / float64(*dies*64))
	if blocksPerDie < 4 {
		blocksPerDie = 4
	}
	cfg.Geometry = flash.Geometry{
		Channels: channels, DiesPerChannel: (*dies + channels - 1) / channels, PlanesPerDie: 1,
		BlocksPerDie: blocksPerDie, PagesPerBlock: 64, PageSize: 4096,
	}
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("device: %s\n", dev.Geometry().String())

	payload := make([]byte, cfg.Geometry.PageSize)
	r := sim.NewRand(1)
	var z *sim.Zipf
	if *zipf > 0 {
		z = sim.NewZipf(r, *pages, *zipf)
	}
	next := func() int {
		if z != nil {
			return z.Next()
		}
		return r.Intn(*pages)
	}

	start := time.Now()
	var elapsed sim.Time
	switch *stack {
	case "noftl":
		mgr := core.NewManager(dev, core.DefaultOptions())
		base := mgr.AllocateLPNs(*pages)
		now := sim.Time(0)
		for i := 0; i < *pages; i++ {
			if now, err = mgr.WritePage(now, base+core.LPN(i), payload, core.Hint{}); err != nil {
				fatal(err)
			}
		}
		for i := 0; i < *updates; i++ {
			if now, err = mgr.WritePage(now, base+core.LPN(next()), payload, core.Hint{}); err != nil {
				fatal(err)
			}
		}
		elapsed = now
		st := mgr.Stats()
		fmt.Printf("\nNoFTL space manager:\n%s", st.String())
		fmt.Printf("write amplification: %.3f\n", st.WriteAmplification())
	case "ftl":
		ssd := ftl.New(dev, ftl.DefaultOptions())
		now := sim.Time(0)
		for i := 0; i < *pages; i++ {
			if now, err = ssd.Write(now, int64(i), payload); err != nil {
				fatal(err)
			}
		}
		for i := 0; i < *updates; i++ {
			if now, err = ssd.Write(now, int64(next()), payload); err != nil {
				fatal(err)
			}
		}
		elapsed = now
		st := ssd.Stats()
		fmt.Printf("\nFTL-based SSD:\n")
		fmt.Printf("host reads=%d writes=%d trims=%d\n", st.HostReads, st.HostWrites, st.Trims)
		fmt.Printf("gc copybacks=%d erases=%d  map hits=%d misses=%d\n", st.GCCopybacks, st.GCErases, st.MapHits, st.MapMisses)
		fmt.Printf("write amplification: %.3f\n", st.WriteAmplification())
	default:
		fmt.Fprintf(os.Stderr, "unknown stack %q\n", *stack)
		os.Exit(2)
	}

	devStats := dev.Stats()
	fmt.Printf("\nflash device: reads=%d programs=%d erases=%d copybacks=%d bad-blocks=%d\n",
		devStats.Reads, devStats.Programs, devStats.Erases, devStats.Copybacks, devStats.BadBlocks)
	var maxWear int64
	for _, d := range devStats.PerDie {
		if d.MaxWear > maxWear {
			maxWear = d.MaxWear
		}
	}
	fmt.Printf("max block wear: %d erase cycles\n", maxWear)
	fmt.Printf("simulated time: %.3f s   (wall clock %.2f s)\n", elapsed.Seconds(), time.Since(start).Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
