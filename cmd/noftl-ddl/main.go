// Command noftl-ddl is a small administration shell for NoFTL regions: it
// executes the paper's DDL (CREATE REGION / TABLESPACE / TABLE / INDEX)
// against an in-memory database on simulated native flash and prints the
// resulting physical layout, demonstrating that the DBA manages native flash
// through the familiar logical storage structures.
//
// Usage:
//
//	noftl-ddl -e 'CREATE REGION rgHot (MAX_CHIPS=4); CREATE TABLESPACE tsHot (REGION=rgHot);'
//	echo 'CREATE TABLE T (t_id NUMBER(3)) TABLESPACE tsHot;' | noftl-ddl
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"noftl"
)

func main() {
	exec := flag.String("e", "", "DDL statements to execute (reads stdin when empty)")
	dies := flag.Int("dies", 16, "number of flash dies of the simulated device")
	flag.Parse()

	cfg := noftl.DefaultConfig()
	cfg.Flash.Geometry.Channels = 4
	cfg.Flash.Geometry.DiesPerChannel = (*dies + 3) / 4
	db, err := noftl.OpenConfig(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer db.Close()

	input := *exec
	if input == "" {
		var b strings.Builder
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			b.WriteString(sc.Text())
			b.WriteString("\n")
		}
		input = b.String()
	}
	if strings.TrimSpace(input) == "" {
		fmt.Fprintln(os.Stderr, "no DDL given (use -e or pipe statements on stdin)")
		os.Exit(2)
	}
	if err := db.Exec(input); err != nil {
		fmt.Fprintf(os.Stderr, "DDL failed: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("device: %s\n\n", db.Geometry().String())
	schema := db.Schema()
	fmt.Println("regions:")
	for _, rs := range db.Stats().Space.Regions {
		fmt.Printf("  %-16s id=%d dies=%v capacity=%d pages\n", rs.Name, rs.ID, rs.Dies, rs.CapacityPages)
	}
	fmt.Println("\ntablespaces:")
	for _, ts := range schema.Tablespaces {
		fmt.Printf("  %-16s region=%s extent=%d pages\n", ts.Name, ts.Region, ts.ExtentPages)
	}
	fmt.Println("\ntables:")
	for _, t := range schema.Tables {
		cols := make([]string, len(t.Columns))
		for i, c := range t.Columns {
			cols[i] = c.Name + " " + c.Type
		}
		fmt.Printf("  %-16s tablespace=%s (%s)\n", t.Name, t.Tablespace, strings.Join(cols, ", "))
	}
	fmt.Println("\nindexes:")
	for _, i := range schema.Indexes {
		fmt.Printf("  %-16s on %s(%s) tablespace=%s unique=%v\n",
			i.Name, i.Table, strings.Join(i.Columns, ","), i.Tablespace, i.Unique)
	}
}
