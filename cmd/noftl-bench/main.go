// Command noftl-bench regenerates the paper's evaluation artifacts: the
// Figure 2 placement configuration, the Figure 3 performance comparison, the
// abstract's headline metrics and the ablation experiments A1–A5.
//
// Usage:
//
//	noftl-bench -experiment figure3 -scale small
//	noftl-bench -experiment all -scale paper     (the full 64-die run)
//	noftl-bench -experiment all -json BENCH_small.json
//
// With -json the results are additionally written as a machine-readable
// document ("-" writes JSON to stdout and suppresses the text tables), so
// successive runs can be diffed and the performance trajectory tracked.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"noftl/internal/experiments"
)

// jsonDoc is the top-level layout of the -json output.
type jsonDoc struct {
	Scale       string                 `json:"scale"`
	GeneratedAt time.Time              `json:"generated_at"`
	Experiments map[string]interface{} `json:"experiments"`
	WallClockS  map[string]float64     `json:"wall_clock_seconds"`
}

func main() {
	experiment := flag.String("experiment", "all",
		"experiment to run: figure2, figure3, headline, parallelism, hotcold, ftl, sweep, batch or all")
	scaleName := flag.String("scale", "small", "experiment scale: tiny, small or paper")
	jsonPath := flag.String("json", "", "write machine-readable results to this file (\"-\" for stdout)")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "tiny":
		scale = experiments.ScaleTiny
	case "small":
		scale = experiments.ScaleSmall
	case "paper":
		scale = experiments.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	doc := jsonDoc{
		Scale:       fmt.Sprint(scale),
		GeneratedAt: time.Now().UTC(),
		Experiments: make(map[string]interface{}),
		WallClockS:  make(map[string]float64),
	}
	quiet := *jsonPath == "-"
	say := func(format string, args ...interface{}) {
		if !quiet {
			fmt.Printf(format, args...)
		}
	}

	run := func(key, name string, fn func() (interface{}, error)) {
		say("=== %s (scale %s) ===\n", name, scale)
		start := time.Now()
		result, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		doc.Experiments[key] = result
		doc.WallClockS[key] = time.Since(start).Seconds()
		say("(wall-clock %.1fs)\n\n", doc.WallClockS[key])
	}

	known := map[string]bool{
		"all": true, "figure2": true, "figure3": true, "headline": true,
		"parallelism": true, "hotcold": true, "ftl": true, "sweep": true, "batch": true,
	}
	if !known[*experiment] {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want figure2, figure3, headline, parallelism, hotcold, ftl, sweep, batch or all)\n", *experiment)
		os.Exit(2)
	}
	want := func(name string) bool { return *experiment == "all" || *experiment == name }

	if want("figure2") {
		run("figure2", "Figure 2: Region Advisor placement configuration", func() (interface{}, error) {
			f2, err := experiments.RunFigure2(scale)
			if err != nil {
				return nil, err
			}
			say("%s\n", f2.Table())
			say("%s\n", experiments.PaperFigure2Table(f2.Plan.TotalDies))
			return f2, nil
		})
	}
	if want("figure3") || want("headline") {
		run("figure3", "Figure 3: traditional vs multi-region placement under TPC-C", func() (interface{}, error) {
			f3, err := experiments.RunFigure3(scale)
			if err != nil {
				return nil, err
			}
			say("%s\n", f3.Table())
			say("%s\n", f3.Headline().String())
			doc.Experiments["headline"] = f3.Headline()
			return f3, nil
		})
	}
	if want("parallelism") {
		run("parallelism", "A1: die striping vs single-die layout", func() (interface{}, error) {
			res, err := experiments.RunAblationParallelism(4096, 8, 8)
			if err != nil {
				return nil, err
			}
			say("%s\n", res.String())
			return res, nil
		})
	}
	if want("hotcold") {
		run("hotcold", "A2: hot/cold separation and write amplification", func() (interface{}, error) {
			res, err := experiments.RunAblationHotCold(4000, 512, 30)
			if err != nil {
				return nil, err
			}
			say("%s\n", res.String())
			return res, nil
		})
	}
	if want("ftl") {
		run("ftl", "A3: black-box FTL vs NoFTL", func() (interface{}, error) {
			res, err := experiments.RunAblationFTLvsNoFTL(3000, 15000)
			if err != nil {
				return nil, err
			}
			say("%s\n", res.String())
			return res, nil
		})
	}
	if want("sweep") {
		run("sweep", "A4: region count vs throughput and GC overhead", func() (interface{}, error) {
			points, err := experiments.RunAblationRegionSweep(scale)
			if err != nil {
				return nil, err
			}
			say("%s\n", experiments.SweepTable(points))
			return points, nil
		})
	}
	if want("batch") {
		run("batch", "A5: batched vs serial I/O through the scheduler", func() (interface{}, error) {
			res, err := experiments.RunAblationBatchedIO(4096, 8, 64)
			if err != nil {
				return nil, err
			}
			say("%s\n", res.String())
			return res, nil
		})
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal results: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(data)
		} else {
			if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
				os.Exit(1)
			}
			say("results written to %s\n", *jsonPath)
		}
	}
}
