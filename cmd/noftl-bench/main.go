// Command noftl-bench regenerates the paper's evaluation artifacts: the
// Figure 2 placement configuration, the Figure 3 performance comparison, the
// abstract's headline metrics and the ablation experiments A1–A6.
//
// Usage:
//
//	noftl-bench -experiment figure3 -scale small
//	noftl-bench -experiment all -scale paper     (the full 64-die run)
//	noftl-bench -experiment batch,batch_dml,a6 -json BENCH_small.json
//	noftl-bench -experiment batch,batch_dml,a6 -json out.json -baseline ci/BENCH_baseline.json
//
// With -json the results are additionally written as a machine-readable
// document ("-" writes JSON to stdout and suppresses the text tables), so
// successive runs can be diffed and the performance trajectory tracked.
// With -baseline the run is additionally compared against a previously
// recorded JSON document and the command exits non-zero when a gated metric
// (A5 batched speedup, A6 write amplification) regresses by more than
// -baseline-threshold — the check CI runs on every pull request.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"noftl/internal/experiments"
	"noftl/internal/metrics"
)

// jsonDoc is the top-level layout of the -json output.
type jsonDoc struct {
	Scale       string                 `json:"scale"`
	GeneratedAt time.Time              `json:"generated_at"`
	Experiments map[string]interface{} `json:"experiments"`
	WallClockS  map[string]float64     `json:"wall_clock_seconds"`
}

func main() {
	experiment := flag.String("experiment", "all",
		"comma-separated experiments to run: figure2, figure3, headline, parallelism, hotcold, ftl, sweep, batch, batch_dml, a6, tpcc, chaos or all")
	scaleName := flag.String("scale", "small", "experiment scale: tiny, small or paper")
	workers := flag.Int("workers", 8, "parallel worker goroutines for the tpcc scaling experiment")
	seeds := flag.Int("seeds", 16, "seeded crash points for the chaos experiment")
	minTPCCScaling := flag.Float64("min-tpcc-scaling", 4.0,
		"fail the tpcc experiment when N-worker wall-clock throughput scales below this factor (capped at NumCPU/2; skipped on single-core machines; 0 disables)")
	jsonPath := flag.String("json", "", "write machine-readable results to this file (\"-\" for stdout)")
	baselinePath := flag.String("baseline", "", "compare gated metrics against this baseline JSON and fail on regression")
	baselineThreshold := flag.Float64("baseline-threshold", 0.10, "relative regression tolerated against -baseline")
	metricsAddr := flag.String("metrics-addr", "",
		"serve bench progress metrics (Prometheus text on /metrics) and pprof (/debug/pprof/) on this address while running")
	flag.Parse()

	var benchReg *metrics.Registry
	if *metricsAddr != "" {
		var err error
		benchReg, err = serveBenchMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics listener: %v\n", err)
			os.Exit(1)
		}
	}

	var scale experiments.Scale
	switch *scaleName {
	case "tiny":
		scale = experiments.ScaleTiny
	case "small":
		scale = experiments.ScaleSmall
	case "paper":
		scale = experiments.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	doc := jsonDoc{
		Scale:       fmt.Sprint(scale),
		GeneratedAt: time.Now().UTC(),
		Experiments: make(map[string]interface{}),
		WallClockS:  make(map[string]float64),
	}
	quiet := *jsonPath == "-"
	say := func(format string, args ...interface{}) {
		if !quiet {
			fmt.Printf(format, args...)
		}
	}

	run := func(key, name string, fn func() (interface{}, error)) {
		say("=== %s (scale %s) ===\n", name, scale)
		start := time.Now()
		result, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		doc.Experiments[key] = result
		doc.WallClockS[key] = time.Since(start).Seconds()
		say("(wall-clock %.1fs)\n\n", doc.WallClockS[key])
		if benchReg != nil {
			benchReg.Counter("noftl_bench_experiments_completed_total",
				"Experiments completed by this noftl-bench run.").With().Inc()
			benchReg.Gauge("noftl_bench_wall_clock_milliseconds",
				"Wall-clock time each experiment took.", "experiment").
				With(key).Set(time.Since(start).Milliseconds())
		}
	}

	known := map[string]bool{
		"all": true, "figure2": true, "figure3": true, "headline": true,
		"parallelism": true, "hotcold": true, "ftl": true, "sweep": true,
		"batch": true, "batch_dml": true, "a6": true, "tpcc": true,
		"chaos": true,
	}
	selected := map[string]bool{}
	for _, name := range strings.Split(*experiment, ",") {
		name = strings.TrimSpace(strings.ToLower(name))
		if name == "" {
			continue
		}
		if !known[name] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (want figure2, figure3, headline, parallelism, hotcold, ftl, sweep, batch, batch_dml, a6, tpcc, chaos or all)\n", name)
			os.Exit(2)
		}
		selected[name] = true
	}
	want := func(name string) bool { return selected["all"] || selected[name] }

	if want("figure2") {
		run("figure2", "Figure 2: Region Advisor placement configuration", func() (interface{}, error) {
			f2, err := experiments.RunFigure2(scale)
			if err != nil {
				return nil, err
			}
			say("%s\n", f2.Table())
			say("%s\n", experiments.PaperFigure2Table(f2.Plan.TotalDies))
			return f2, nil
		})
	}
	if want("figure3") || want("headline") {
		run("figure3", "Figure 3: traditional vs multi-region placement under TPC-C", func() (interface{}, error) {
			f3, err := experiments.RunFigure3(scale)
			if err != nil {
				return nil, err
			}
			say("%s\n", f3.Table())
			say("%s\n", f3.Headline().String())
			doc.Experiments["headline"] = f3.Headline()
			return f3, nil
		})
	}
	if want("parallelism") {
		run("parallelism", "A1: die striping vs single-die layout", func() (interface{}, error) {
			res, err := experiments.RunAblationParallelism(4096, 8, 8)
			if err != nil {
				return nil, err
			}
			say("%s\n", res.String())
			return res, nil
		})
	}
	if want("hotcold") {
		run("hotcold", "A2: hot/cold separation and write amplification", func() (interface{}, error) {
			res, err := experiments.RunAblationHotCold(4000, 512, 30)
			if err != nil {
				return nil, err
			}
			say("%s\n", res.String())
			return res, nil
		})
	}
	if want("ftl") {
		run("ftl", "A3: black-box FTL vs NoFTL", func() (interface{}, error) {
			res, err := experiments.RunAblationFTLvsNoFTL(3000, 15000)
			if err != nil {
				return nil, err
			}
			say("%s\n", res.String())
			return res, nil
		})
	}
	if want("sweep") {
		run("sweep", "A4: region count vs throughput and GC overhead", func() (interface{}, error) {
			points, err := experiments.RunAblationRegionSweep(scale)
			if err != nil {
				return nil, err
			}
			say("%s\n", experiments.SweepTable(points))
			return points, nil
		})
	}
	if want("batch") {
		run("batch", "A5: batched vs serial I/O through the scheduler", func() (interface{}, error) {
			res, err := experiments.RunAblationBatchedIO(4096, 8, 64)
			if err != nil {
				return nil, err
			}
			say("%s\n", res.String())
			return res, nil
		})
	}
	if want("batch_dml") {
		run("batch_dml", "Batch DML: InsertBatch/GetBatch vs row-at-a-time through the public API", func() (interface{}, error) {
			res, err := experiments.RunBatchDML(2000, 256)
			if err != nil {
				return nil, err
			}
			say("%s\n", res.String())
			return res, nil
		})
	}
	if want("a6") {
		run("a6", "A6: foreground vs background GC under a skewed update workload", func() (interface{}, error) {
			res, err := experiments.RunAblationBackgroundGC(6000, 30000)
			if err != nil {
				return nil, err
			}
			say("%s\n", res.String())
			return res, nil
		})
	}

	if want("tpcc") {
		run("tpcc", "TPC-C concurrency scaling: 1 vs N parallel workers", func() (interface{}, error) {
			res, err := experiments.RunTPCCScaling(scale, *workers)
			if err != nil {
				return nil, err
			}
			say("%s\n", res.Table())
			say("%s\n", res.String())
			// Wall-clock scaling can only manifest on machines with spare
			// cores: require min(-min-tpcc-scaling, NumCPU/2) and skip the
			// gate entirely on single-core machines, where the two runs are
			// time-sliced onto the same CPU.
			if *minTPCCScaling > 0 {
				if res.NumCPU < 2 {
					say("tpcc scaling gate skipped: only %d CPU available\n", res.NumCPU)
				} else {
					required := math.Min(*minTPCCScaling, float64(res.NumCPU)/2)
					if res.Scaling < required {
						return nil, fmt.Errorf(
							"wall-clock scaling %.2fx with %d workers is below the required %.2fx (NumCPU=%d, -min-tpcc-scaling=%.2f)",
							res.Scaling, res.Parallel.Workers, required, res.NumCPU, *minTPCCScaling)
					}
					say("tpcc scaling gate passed: %.2fx >= required %.2fx\n", res.Scaling, required)
				}
			}
			return res, nil
		})
	}

	if want("chaos") {
		run("chaos", "Chaos: seeded crash-injection and recovery campaign", func() (interface{}, error) {
			res, err := experiments.RunChaos(*seeds)
			if err != nil {
				return nil, err
			}
			say("%s\n", res.String())
			return res, nil
		})
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal results: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(data)
		} else {
			if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
				os.Exit(1)
			}
			say("results written to %s\n", *jsonPath)
		}
	}

	if *baselinePath != "" {
		failures, err := compareBaseline(doc, *baselinePath, *baselineThreshold)
		if err != nil {
			fmt.Fprintf(os.Stderr, "baseline comparison: %v\n", err)
			os.Exit(1)
		}
		if len(failures) > 0 {
			fmt.Fprintf(os.Stderr, "PERFORMANCE REGRESSION vs %s (threshold %.0f%%):\n", *baselinePath, *baselineThreshold*100)
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "  %s\n", f)
			}
			os.Exit(1)
		}
		say("baseline check vs %s passed (threshold %.0f%%)\n", *baselinePath, *baselineThreshold*100)
	}
}

// serveBenchMetrics starts the opt-in observability endpoint of the bench
// process: run-progress metrics in the Prometheus text format on /metrics and
// the standard pprof handlers under /debug/pprof/ on the same mux (profiling
// a long `-scale paper` run without restarting it).  Databases opened by the
// experiments have their own metric plane (noftl.WithMetricsListener); this
// endpoint observes the bench process itself.
func serveBenchMetrics(addr string) (*metrics.Registry, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	reg.Gauge("noftl_bench_up", "Always 1 while noftl-bench is running.").With().Set(1)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(reg.Text()))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(lis) }()
	fmt.Fprintf(os.Stderr, "serving metrics and pprof on http://%s\n", lis.Addr())
	return reg, nil
}

// baselineDoc mirrors the subset of the -json document the regression gate
// reads back.  Experiments absent from either side are skipped, so the gate
// only compares what both runs measured.
type baselineDoc struct {
	Experiments struct {
		Batch    *experiments.BatchedIOResult    `json:"batch"`
		BatchDML *experiments.BatchDMLResult     `json:"batch_dml"`
		A6       *experiments.BackgroundGCResult `json:"a6"`
		TPCC     *experiments.TPCCScalingResult  `json:"tpcc"`
		Chaos    *experiments.ChaosResult        `json:"chaos"`
	} `json:"experiments"`
}

// compareBaseline re-marshals the current results and diffs the gated
// metrics against the baseline file: the A5 batched-I/O speedups and the
// batch-DML submission ratio and speedups must not drop, and the A6 write
// amplification (and tail-latency win) must not rise, by more than threshold
// relative.
func compareBaseline(doc jsonDoc, path string, threshold float64) ([]string, error) {
	baseRaw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base baselineDoc
	if err := json.Unmarshal(baseRaw, &base); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	curRaw, err := json.Marshal(doc)
	if err != nil {
		return nil, err
	}
	var cur baselineDoc
	if err := json.Unmarshal(curRaw, &cur); err != nil {
		return nil, err
	}

	var failures []string
	// Higher is better: fail when the current value drops below
	// base*(1-threshold).
	lowerBound := func(metric string, curV, baseV float64) {
		if baseV > 0 && curV < baseV*(1-threshold) {
			failures = append(failures,
				fmt.Sprintf("%s: %.3f, baseline %.3f (-%.1f%%)", metric, curV, baseV, (1-curV/baseV)*100))
		}
	}
	// Lower is better: fail when the current value rises above
	// base*(1+threshold).
	upperBound := func(metric string, curV, baseV float64) {
		if baseV > 0 && curV > baseV*(1+threshold) {
			failures = append(failures,
				fmt.Sprintf("%s: %.3f, baseline %.3f (+%.1f%%)", metric, curV, baseV, (curV/baseV-1)*100))
		}
	}
	if cur.Experiments.Batch != nil && base.Experiments.Batch != nil {
		lowerBound("A5 batched read speedup", cur.Experiments.Batch.ReadSpeedup, base.Experiments.Batch.ReadSpeedup)
		lowerBound("A5 batched write speedup", cur.Experiments.Batch.WriteSpeedup, base.Experiments.Batch.WriteSpeedup)
	}
	if cur.Experiments.BatchDML != nil && base.Experiments.BatchDML != nil {
		lowerBound("batch_dml insert submission ratio",
			cur.Experiments.BatchDML.InsertSubmissionRatio, base.Experiments.BatchDML.InsertSubmissionRatio)
		lowerBound("batch_dml insert speedup",
			cur.Experiments.BatchDML.InsertSpeedup, base.Experiments.BatchDML.InsertSpeedup)
		lowerBound("batch_dml read speedup",
			cur.Experiments.BatchDML.GetSpeedup, base.Experiments.BatchDML.GetSpeedup)
	}
	if cur.Experiments.TPCC != nil && base.Experiments.TPCC != nil {
		// Only the virtual-time (simulated) throughput is machine-independent
		// enough to gate; the wall-clock scaling factor is enforced at run
		// time by -min-tpcc-scaling with a NumCPU-aware bar instead.
		lowerBound("tpcc virtual TPS (1 worker)",
			cur.Experiments.TPCC.Baseline.TPS, base.Experiments.TPCC.Baseline.TPS)
	}
	if cur.Experiments.Chaos != nil && base.Experiments.Chaos != nil &&
		cur.Experiments.Chaos.Seeds == base.Experiments.Chaos.Seeds {
		// The campaign is fully deterministic for a fixed seed count, so the
		// replay volume is exactly reproducible: a rise means the periodic
		// checkpoints stopped bounding recovery.
		upperBound("chaos recovery replay bytes per seed",
			cur.Experiments.Chaos.ReplayBytesPerSeed, base.Experiments.Chaos.ReplayBytesPerSeed)
		lowerBound("chaos rows recovered",
			float64(cur.Experiments.Chaos.RowsRecovered), float64(base.Experiments.Chaos.RowsRecovered))
	}
	if cur.Experiments.A6 != nil && base.Experiments.A6 != nil {
		upperBound("A6 write amplification (hot/cold separated)", cur.Experiments.A6.SeparatedWA, base.Experiments.A6.SeparatedWA)
		upperBound("A6 background p99 write latency",
			float64(cur.Experiments.A6.BackgroundP99Write), float64(base.Experiments.A6.BackgroundP99Write))
	}
	return failures, nil
}
