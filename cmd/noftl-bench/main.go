// Command noftl-bench regenerates the paper's evaluation artifacts: the
// Figure 2 placement configuration, the Figure 3 performance comparison, the
// abstract's headline metrics and the ablation experiments A1–A4.
//
// Usage:
//
//	noftl-bench -experiment figure3 -scale small
//	noftl-bench -experiment all -scale paper     (the full 64-die run)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"noftl/internal/experiments"
)

func main() {
	experiment := flag.String("experiment", "all",
		"experiment to run: figure2, figure3, headline, parallelism, hotcold, ftl, sweep or all")
	scaleName := flag.String("scale", "small", "experiment scale: tiny, small or paper")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "tiny":
		scale = experiments.ScaleTiny
	case "small":
		scale = experiments.ScaleSmall
	case "paper":
		scale = experiments.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	run := func(name string, fn func() error) {
		fmt.Printf("=== %s (scale %s) ===\n", name, scale)
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(wall-clock %.1fs)\n\n", time.Since(start).Seconds())
	}

	want := func(name string) bool { return *experiment == "all" || *experiment == name }

	if want("figure2") {
		run("Figure 2: Region Advisor placement configuration", func() error {
			f2, err := experiments.RunFigure2(scale)
			if err != nil {
				return err
			}
			fmt.Println(f2.Table())
			fmt.Println(experiments.PaperFigure2Table(f2.Plan.TotalDies))
			return nil
		})
	}
	if want("figure3") || want("headline") {
		run("Figure 3: traditional vs multi-region placement under TPC-C", func() error {
			f3, err := experiments.RunFigure3(scale)
			if err != nil {
				return err
			}
			fmt.Println(f3.Table())
			fmt.Println(f3.Headline().String())
			return nil
		})
	}
	if want("parallelism") {
		run("A1: die striping vs single-die layout", func() error {
			res, err := experiments.RunAblationParallelism(4096, 8, 8)
			if err != nil {
				return err
			}
			fmt.Println(res.String())
			return nil
		})
	}
	if want("hotcold") {
		run("A2: hot/cold separation and write amplification", func() error {
			res, err := experiments.RunAblationHotCold(4000, 512, 30)
			if err != nil {
				return err
			}
			fmt.Println(res.String())
			return nil
		})
	}
	if want("ftl") {
		run("A3: black-box FTL vs NoFTL", func() error {
			res, err := experiments.RunAblationFTLvsNoFTL(3000, 15000)
			if err != nil {
				return err
			}
			fmt.Println(res.String())
			return nil
		})
	}
	if want("sweep") {
		run("A4: region count vs throughput and GC overhead", func() error {
			points, err := experiments.RunAblationRegionSweep(scale)
			if err != nil {
				return err
			}
			fmt.Println(experiments.SweepTable(points))
			return nil
		})
	}
}
