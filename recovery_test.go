package noftl

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"noftl/internal/flash"
	"noftl/internal/storage"
)

// ledgerWorkload commits n small rows into table name, creating it first.
func ledgerWorkload(t *testing.T, db *DB, name string, n int) {
	t.Helper()
	tbl, err := db.CreateTable(name, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	err = db.Update(func(tx *Tx) error {
		for i := 0; i < n; i++ {
			if _, err := tbl.Insert(tx, []byte(fmt.Sprintf("%s-row-%04d", name, i))); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWALByteLedger checks the log's byte accounting across appends, explicit
// checkpoints and the truncation they trigger: BytesAppended must equal
// BytesTrimmed + BytesLive at every observation point, checkpointing must trim
// whole pages, and BytesLive (the bound on what a crash would replay) must
// shrink back to the checkpoint's own footprint afterwards.
func TestWALByteLedger(t *testing.T) {
	db, err := OpenConfig(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	check := func(stage string) WALStats {
		w := db.Stats().WAL
		if w.BytesAppended != w.BytesTrimmed+w.BytesLive {
			t.Fatalf("%s: ledger broken: appended=%d trimmed=%d live=%d",
				stage, w.BytesAppended, w.BytesTrimmed, w.BytesLive)
		}
		return w
	}

	ledgerWorkload(t, db, "L", 200)
	before := check("after workload")
	if before.BytesAppended == 0 || before.BytesLive == 0 {
		t.Fatalf("workload appended nothing: %+v", before)
	}

	if _, err := db.Checkpoint(db.SimulatedTime()); err != nil {
		t.Fatal(err)
	}
	after := check("after checkpoint")
	if after.BytesTrimmed <= before.BytesTrimmed {
		t.Fatalf("checkpoint trimmed nothing: %d -> %d", before.BytesTrimmed, after.BytesTrimmed)
	}
	if after.PagesTrimmed == 0 {
		t.Fatal("checkpoint truncation dropped no log pages")
	}
	// The live bytes after a checkpoint are the checkpoint's own records (the
	// snapshot) plus at most one partially trimmed page of older records.
	if after.BytesLive >= before.BytesLive+after.Checkpoint.LastBytes {
		t.Fatalf("live bytes did not shrink: %d -> %d (ckpt %d)",
			before.BytesLive, after.BytesLive, after.Checkpoint.LastBytes)
	}

	// More work after the checkpoint keeps the ledger balanced.
	ledgerWorkload(t, db, "M", 100)
	check("after second workload")
	if _, err := db.Checkpoint(db.SimulatedTime()); err != nil {
		t.Fatal(err)
	}
	final := check("after second checkpoint")
	if final.BytesTrimmed <= after.BytesTrimmed {
		t.Fatalf("second checkpoint trimmed nothing: %d -> %d", after.BytesTrimmed, final.BytesTrimmed)
	}
}

// newestLogPage returns the survey entry of the newest surviving log page
// write — the only write a single power loss can tear.
func newestLogPage(t *testing.T, dev *flash.Device) flash.PageSurvey {
	t.Helper()
	var tail flash.PageSurvey
	found := false
	for _, blk := range dev.Survey() {
		for _, pg := range blk.Pages {
			if pg.Meta.Flags&flash.FlagLog == 0 {
				continue
			}
			if !found || pg.Meta.Seq > tail.Meta.Seq {
				tail, found = pg, true
			}
		}
	}
	if !found {
		t.Fatal("no log pages survive on the device")
	}
	return tail
}

// TestCorruptedTailTruncatedOnReopen corrupts bytes of the newest log write
// after a crash — the byte-level torn-tail case — and checks that recovery
// detects it, truncates the damaged suffix instead of failing, and still
// produces a verify-clean database containing every row whose commit force
// predates the damaged write.
func TestCorruptedTailTruncatedOnReopen(t *testing.T) {
	db, err := OpenConfig(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("T", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Batch A is sealed by an explicit checkpoint; batch B rides in the log
	// tail and is what the corruption may cost us.
	stable := [][]byte{}
	err = db.Update(func(tx *Tx) error {
		for i := 0; i < 40; i++ {
			row := []byte(fmt.Sprintf("stable-%04d", i))
			if _, err := tbl.Insert(tx, row); err != nil {
				return err
			}
			stable = append(stable, row)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(db.SimulatedTime()); err != nil {
		t.Fatal(err)
	}
	err = db.Update(func(tx *Tx) error {
		_, err := tbl.Insert(tx, []byte("tail-row"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	img := db.Crash()
	// Flip bytes inside the records of the newest log write (records grow
	// from the page end, so the tail of the buffer is record bytes, not the
	// slot directory): the CRC no longer matches, so the scan must fall back
	// to an older version of the page or a valid prefix and report the tail
	// as torn.
	tail := newestLogPage(t, img.dev)
	pageSize := smallConfig().Flash.Geometry.PageSize
	if err := img.dev.CorruptPage(tail.Addr, pageSize-24, 16, 0xA5); err != nil {
		t.Fatal(err)
	}

	rec, err := Reopen(img)
	if err != nil {
		t.Fatalf("reopen after tail corruption: %v", err)
	}
	defer rec.Close()
	rst, ok := rec.Recovery()
	if !ok {
		t.Fatal("no recovery stats after Reopen")
	}
	if !rst.TornTail || rst.TornRecords == 0 {
		t.Fatalf("corrupted tail not reported: %+v", rst)
	}
	if err := rec.Admin().VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Every checkpointed row survives; the tail row may legitimately be lost
	// with the damaged write.
	rtbl, ok := rec.Table("T")
	if !ok {
		t.Fatal("table T lost in recovery")
	}
	got := map[string]bool{}
	tx := rec.Begin()
	defer tx.Abort()
	err = rtbl.Scan(tx, func(_ RID, row []byte) bool {
		got[string(row)] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range stable {
		if !got[string(row)] {
			t.Fatalf("checkpointed row %q lost to tail corruption", row)
		}
	}
}

// TestCorruptedLogBodyRejected corrupts every surviving version of a log page
// that is NOT the newest write.  That cannot be explained by a torn program,
// so recovery must refuse with ErrCorruptLog rather than silently dropping
// committed records.
func TestCorruptedLogBodyRejected(t *testing.T) {
	db, err := OpenConfig(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ledgerWorkload(t, db, "T", 120)

	img := db.Crash()
	tailLPN := newestLogPage(t, img.dev).Meta.LPN
	// Corrupt all versions of one non-tail log page.
	var victim uint64
	picked := false
	for _, blk := range img.dev.Survey() {
		for _, pg := range blk.Pages {
			if pg.Meta.Flags&flash.FlagLog == 0 || pg.Meta.LPN == tailLPN {
				continue
			}
			if !picked {
				victim, picked = pg.Meta.LPN, true
			}
			if pg.Meta.LPN == victim {
				if err := img.dev.CorruptPage(pg.Addr, storage.PageHeaderSize+4, 16, 0x5A); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if !picked {
		t.Skip("log fits in a single page; no body page to corrupt")
	}

	if _, err := Reopen(img); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("reopen over corrupt log body: err=%v, want ErrCorruptLog", err)
	}
}

// TestLightCheckpointsRefuseRecovery checks the documented trade of
// WithLightCheckpoints: the log stays bounded, but a log whose last
// checkpoint carries no snapshot is not recoverable and Reopen must say so
// instead of silently booting an empty database.
func TestLightCheckpointsRefuseRecovery(t *testing.T) {
	db, err := OpenConfig(smallConfig(), WithLightCheckpoints())
	if err != nil {
		t.Fatal(err)
	}
	ledgerWorkload(t, db, "T", 50)
	if _, err := db.Checkpoint(db.SimulatedTime()); err != nil {
		t.Fatal(err)
	}
	w := db.Stats().WAL
	if w.BytesAppended != w.BytesTrimmed+w.BytesLive {
		t.Fatalf("light checkpoint broke the ledger: %+v", w)
	}
	if w.PagesTrimmed == 0 {
		t.Fatal("light checkpoint trimmed no pages")
	}

	_, err = Reopen(db.Crash())
	if !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("reopen of light-checkpointed log: err=%v, want ErrCorruptLog", err)
	}
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("light checkpoints")) {
		t.Fatalf("error does not name the cause: %v", err)
	}
}
