package noftl

import (
	"noftl/internal/storage"
	"noftl/internal/wal"
)

// InsertBatch adds a batch of rows and returns their RIDs in order.  It is
// the batch-first counterpart of Insert: the tail page is filled first, the
// remaining rows are packed into full page images, and those pages go to
// flash as one die-striped I/O-scheduler batch — a single scheduler
// submission however many pages the batch spans, instead of one submission
// per page write-back on the row-at-a-time path.
//
// Like a loop of Insert calls, a mid-batch failure leaves the rows applied
// so far in place: they are returned (with their WAL records written)
// alongside the error, and the caller decides whether to abort the
// transaction.
func (t *Table) InsertBatch(tx *Tx, rows [][]byte) ([]RID, error) {
	for range rows {
		tx.chargeOp()
	}
	rids, done, err := t.heap.InsertBatch(tx.Now(), rows)
	tx.inner.AdvanceTo(done)
	for i, rid := range rids {
		tx.inner.Log(wal.RecInsert, t.objectID, wal.EncodeRowPayload(rid, rows[i]))
	}
	t.db.objStats.RecordAppend(t.name, int64(len(rids)))
	return rids, publicErr(err)
}

// GetBatch returns the rows stored under rids, in order.  The pages involved
// are read through the buffer pool's batched path: all cache misses of the
// batch go to the device as one die-striped submission, so rows on different
// dies are read concurrently in virtual time.  A missing record fails the
// whole call with ErrNotFound.
func (t *Table) GetBatch(tx *Tx, rids []RID) ([][]byte, error) {
	for range rids {
		tx.chargeOp()
	}
	rows, done, err := t.heap.GetBatch(tx.Now(), rids)
	if err != nil {
		return nil, publicErr(err)
	}
	tx.inner.AdvanceTo(done)
	return rows, nil
}

// LookupBatch resolves a batch of keys to RIDs in one call.  found[i]
// reports whether keys[i] was present.  Interior B+-tree pages are almost
// always buffer-resident, so the lookups share one warmed cache walk; the
// per-key results carry no per-call scheduler round-trip.
func (i *Index) LookupBatch(tx *Tx, keys [][]byte) (rids []RID, found []bool, err error) {
	rids = make([]RID, len(keys))
	found = make([]bool, len(keys))
	now := tx.Now()
	for k, key := range keys {
		tx.chargeOp()
		val, done, ok, gerr := i.tree.Get(now, key)
		if gerr != nil {
			return nil, nil, publicErr(gerr)
		}
		now = done
		if !ok {
			continue
		}
		rid, derr := storage.DecodeRID(val)
		if derr != nil {
			return nil, nil, derr
		}
		rids[k] = rid
		found[k] = true
	}
	tx.inner.AdvanceTo(now)
	return rids, found, nil
}
